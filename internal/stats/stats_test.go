package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice mean/variance should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMedianUnsortedInput(t *testing.T) {
	if m := Median([]float64{9, 1, 5}); m != 5 {
		t.Errorf("Median = %v, want 5", m)
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 3 + 2x, perfectly linear.
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{3, 5, 7, 9, 11}
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 3, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 3", fit)
	}
	if !almostEq(fit.R, 1, 1e-12) {
		t.Errorf("r = %v, want 1", fit.R)
	}
	if got := fit.Predict(10); !almostEq(got, 23, 1e-12) {
		t.Errorf("Predict(10) = %v, want 23", got)
	}
}

func TestLinearFitNegativeCorrelation(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{10, 8, 6, 4}
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.R, -1, 1e-12) {
		t.Errorf("r = %v, want -1", fit.R)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should fail")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

// Property: fitting y = a + bx with noise-free data recovers a and b for any
// reasonable a, b.
func TestLinearFitRecoveryProperty(t *testing.T) {
	f := func(aRaw, bRaw int16) bool {
		a := float64(aRaw) / 100
		b := float64(bRaw) / 100
		var x, y []float64
		for i := 0; i < 10; i++ {
			x = append(x, float64(i))
			y = append(y, a+b*float64(i))
		}
		fit, err := LinearFit(x, y)
		if err != nil {
			return false
		}
		return almostEq(fit.Slope, b, 1e-9) && almostEq(fit.Intercept, a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if q := c.Quantile(0.25); q != 10 {
		t.Errorf("Quantile(0.25) = %v, want 10", q)
	}
	if q := c.Quantile(1); q != 40 {
		t.Errorf("Quantile(1) = %v, want 40", q)
	}
	if q := c.Quantile(0.26); q != 20 {
		t.Errorf("Quantile(0.26) = %v, want 20", q)
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3, 3, 2})
	xs, ys := c.Points()
	if len(xs) != 4 { // distinct values: 1 2 3 5
		t.Fatalf("got %d points, want 4", len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] || ys[i] <= ys[i-1] {
			t.Fatalf("CDF points not strictly increasing: %v %v", xs, ys)
		}
	}
	if ys[len(ys)-1] != 1 {
		t.Errorf("last CDF y = %v, want 1", ys[len(ys)-1])
	}
}

// Property: At is monotone nondecreasing and bounded in [0, 1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(samples []float64, probe1, probe2 float64) bool {
		if len(samples) == 0 {
			return true
		}
		c := NewCDF(samples)
		lo, hi := probe1, probe2
		if lo > hi {
			lo, hi = hi, lo
		}
		a, b := c.At(lo), c.At(hi)
		return a >= 0 && b <= 1 && a <= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1.5, 2.5, 9.9, -5, 15}
	counts := Histogram(xs, 0, 10, 10)
	if counts[0] != 3 { // 0, 0.5, and clamped -5
		t.Errorf("bucket 0 = %d, want 3", counts[0])
	}
	if counts[9] != 2 { // 9.9 and clamped 15
		t.Errorf("bucket 9 = %d, want 2", counts[9])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram total = %d, want %d", total, len(xs))
	}
}
