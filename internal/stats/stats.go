// Package stats provides the small statistical toolkit the reproduction
// needs: descriptive statistics, simple linear regression with the Pearson
// r-value (used to show that T_boot drifts linearly, §4.4.2), empirical CDFs
// (Fig. 5), and histogram bucketing.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator needs more samples than
// it was given.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 with fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest value in xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice or a p
// outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Regression is the result of a simple least-squares linear fit y = a + bx.
type Regression struct {
	Slope     float64 // b
	Intercept float64 // a
	R         float64 // Pearson correlation coefficient
	N         int     // number of points fitted
}

// LinearFit fits y = a + bx by least squares and reports the Pearson r-value.
// It returns ErrInsufficientData with fewer than two points or when all x
// values are identical.
func LinearFit(x, y []float64) (Regression, error) {
	if len(x) != len(y) {
		return Regression{}, errors.New("stats: LinearFit length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return Regression{}, ErrInsufficientData
	}
	mx, my := Mean(x), Mean(y)
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 {
		return Regression{}, ErrInsufficientData
	}
	slope := sxy / sxx
	r := 1.0
	if syy > 0 {
		r = sxy / math.Sqrt(sxx*syy)
	}
	return Regression{
		Slope:     slope,
		Intercept: my - slope*mx,
		R:         r,
		N:         int(n),
	}, nil
}

// Predict evaluates the fitted line at x.
func (r Regression) Predict(x float64) float64 { return r.Intercept + r.Slope*x }

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs.
func NewCDF(xs []float64) CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return CDF{sorted: sorted}
}

// At returns P(X <= x) under the empirical distribution, in [0, 1].
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Number of samples <= x.
	n := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v such that At(v) >= q, for
// q in (0, 1]. It panics on an empty CDF or q outside (0, 1].
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	if q <= 0 || q > 1 {
		panic("stats: quantile out of range")
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Points returns (x, y) pairs for plotting the step CDF: one point per
// distinct sample value.
func (c CDF) Points() (xs, ys []float64) {
	n := len(c.sorted)
	for i := 0; i < n; i++ {
		if i+1 < n && c.sorted[i+1] == c.sorted[i] {
			continue
		}
		xs = append(xs, c.sorted[i])
		ys = append(ys, float64(i+1)/float64(n))
	}
	return xs, ys
}

// Histogram counts samples into nbins equal-width buckets over [lo, hi].
// Samples outside the range are clamped into the edge buckets. It panics if
// nbins <= 0 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 {
		panic("stats: Histogram with nbins <= 0")
	}
	if hi <= lo {
		panic("stats: Histogram with hi <= lo")
	}
	counts := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
