GO ?= go

.PHONY: check lint race bench run-all

# Tier-1 gate: lint (gofmt + vet), build, test.
check: lint
	$(GO) build ./...
	$(GO) test ./...

# Fails if any file needs gofmt, then runs vet.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# Race-detector pass. The trial engine's jobs=8 determinism test exercises
# the parallel path, so this catches any shared-state leak between trial
# worlds even on a single-core machine.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

run-all:
	$(GO) run ./cmd/eaao run all
