GO ?= go

.PHONY: check race bench run-all

# Tier-1 gate: build, vet, test.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

# Race-detector pass. The trial engine's jobs=8 determinism test exercises
# the parallel path, so this catches any shared-state leak between trial
# worlds even on a single-core machine.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

run-all:
	$(GO) run ./cmd/eaao run all
