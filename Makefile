GO ?= go

.PHONY: check lint race bench bench-scale bench-json bench-diff bench-gate run-all

# Tier-1 gate: lint (gofmt + vet), build, test, a race pass over the fault
# plane and its attack-side recovery paths, quick fault-sweep/multiregion/
# channel-ablation and event-kernel smoke runs, and a smoke run of the
# benchmark record tooling against the checked-in fixture.
check: lint bench-scale bench-gate
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core/... ./internal/faas/...
	@$(GO) run ./cmd/eaao -quick run faultsweep >/dev/null
	@echo "faultsweep smoke OK"
	@$(GO) run ./cmd/eaao -quick run multiregion >/dev/null
	@echo "multiregion smoke OK"
	@$(GO) run ./cmd/eaao -quick run channelablation >/dev/null
	@echo "channelablation smoke OK"
	@$(GO) run ./cmd/eaao -quick run noisesweep >/dev/null
	@echo "noisesweep smoke OK"
	@$(GO) run ./internal/tools/benchjson -label smoke \
		-in internal/tools/benchfmt/testdata/sample_bench.txt -out /tmp/BENCH_smoke.json
	@$(GO) run ./internal/tools/benchdiff /tmp/BENCH_smoke.json /tmp/BENCH_smoke.json >/dev/null
	@rm -f /tmp/BENCH_smoke.json
	@echo "bench tooling smoke OK"

# Fails if any file needs gofmt, then runs vet.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# Race-detector pass. The trial engine's jobs=8 determinism test exercises
# the parallel path, so this catches any shared-state leak between trial
# worlds even on a single-core machine.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Event-kernel throughput smoke: one iteration of the scale benchmark, so the
# tier-1 gate notices if the kernel's events/sec or allocs/event fall off a
# cliff (the BENCH_*.json trajectory records the exact numbers).
bench-scale:
	@$(GO) test -run '^$$' -bench BenchmarkScaleKernel -benchtime 1x -benchmem
	@echo "scale kernel smoke OK"

# Snapshot the benchmark suite into BENCH_<git-short-sha>.json. Run on a
# quiet machine; the record is meant to be checked in.
bench-json:
	$(GO) test -bench=. -benchmem | \
		$(GO) run ./internal/tools/benchjson -label $$(git rev-parse --short HEAD) \
		-out BENCH_$$(git rev-parse --short HEAD).json

# Compare two records: make bench-diff BASE=BENCH_baseline.json HEAD=BENCH_pr3.json
bench-diff:
	$(GO) run ./internal/tools/benchdiff $(BASE) $(HEAD)

# Regression gate over the two most recent checked-in records: fails on any
# >25% movement in the guarded budgets (ns/op, B/op, allocs/op growth;
# events/sec drop; allocs/event growth). Records are snapshots from a quiet
# machine, so the gate is deterministic — it audits the trajectory, it does
# not re-run benchmarks.
GATE_BASE ?= BENCH_pr9.json
GATE_HEAD ?= BENCH_pr10.json
bench-gate:
	@$(GO) run ./internal/tools/benchdiff -gate 25 $(GATE_BASE) $(GATE_HEAD)
	@echo "bench gate OK"

run-all:
	$(GO) run ./cmd/eaao run all
