package eaao

// Integration tests through the public API: the full user journeys the
// README promises, exercised end to end.

import (
	"testing"
	"time"
)

func TestQuickstartJourney(t *testing.T) {
	pl := NewPlatform(2024, USEast1Profile())
	dc := pl.MustRegion(USEast1)
	svc := dc.Account("me").DeployService("probe", ServiceConfig{})
	insts, err := svc.Launch(50)
	if err != nil {
		t.Fatal(err)
	}

	items := make([]VerifyItem, len(insts))
	for i, inst := range insts {
		sample, err := CollectGen1(inst.MustGuest())
		if err != nil {
			t.Fatal(err)
		}
		fp := Gen1FromSample(sample, DefaultPrecision)
		items[i] = VerifyItem{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
	}
	tester := NewCovertTester(pl.Scheduler())
	res, err := VerifyColocation(tester, items, DefaultVerifyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 || len(res.Clusters) > 50 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	total := 0
	for _, c := range res.Clusters {
		total += len(c)
	}
	if total != 50 {
		t.Errorf("clusters cover %d of 50 instances", total)
	}
}

func TestAttackJourney(t *testing.T) {
	pl := NewPlatform(7, USEast1Profile())
	dc := pl.MustRegion(USEast1)

	vic, err := dc.Account("victim").DeployService("login", ServiceConfig{Size: SizeSmall}).Launch(40)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultAttackConfig()
	cfg.Services = 3
	cfg.InstancesPerLaunch = 300
	cfg.Launches = 4
	camp, err := RunOptimizedAttack(dc.Account("attacker"), cfg, Gen1)
	if err != nil {
		t.Fatal(err)
	}
	tester := NewCovertTester(pl.Scheduler())
	cov, spies, err := MeasureCoverageDetail(tester, camp.Live, vic, cfg.Precision)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.AtLeastOne {
		t.Fatal("optimized attack achieved no co-location")
	}
	if len(spies) == 0 {
		t.Fatal("no spies returned despite coverage")
	}

	// Extraction through the facade.
	spy := spies[0]
	spyHost, _ := spy.HostID()
	var target *Instance
	for _, v := range vic {
		if id, _ := v.HostID(); id == spyHost {
			target = v
			break
		}
	}
	if target == nil {
		t.Fatal("no victim on spy host")
	}
	secret := []bool{true, false, true, true, false, false, true, false}
	sched := ExtractionSchedule{
		Start:      pl.Now().Add(time.Second),
		SlotLength: 100 * time.Millisecond,
		Bits:       secret,
	}
	target.SetWorkload(sched.Activity())
	trace, err := MonitorExtraction(pl.Scheduler(), spy, sched, DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := trace.BitAccuracy(secret); acc < 0.99 {
		t.Errorf("extraction accuracy = %v", acc)
	}

	// Re-attack targeting through the facade.
	book := NewTargetBook(cfg.Precision)
	if err := book.RecordVictimHosts(spies); err != nil {
		t.Fatal(err)
	}
	if book.Size() == 0 {
		t.Error("empty target book")
	}
	focused, effort, err := book.Focus(camp.Live)
	if err != nil {
		t.Fatal(err)
	}
	if len(focused) == 0 || effort <= 0 || effort > 0.9 {
		t.Errorf("focus: %d instances, effort %v", len(focused), effort)
	}
}

func TestExperimentRegistryThroughFacade(t *testing.T) {
	exps := Experiments()
	if len(exps) != 28 {
		t.Fatalf("registry has %d experiments, want 28", len(exps))
	}
	res, err := RunExperiment("table1", benchCtx())
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "table1" {
		t.Errorf("ran %q", res.ID)
	}
	if _, err := RunExperiment("nope", benchCtx()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPricingThroughFacade(t *testing.T) {
	r := CloudRunRates()
	if got := r.Cost(100, 50); got <= 0 {
		t.Errorf("cost = %v", got)
	}
}

func TestDeterminismThroughFacade(t *testing.T) {
	fps := func() []string {
		pl := NewPlatform(5, USWest1Profile())
		insts, err := pl.MustRegion(USWest1).Account("a").
			DeployService("s", ServiceConfig{}).Launch(30)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(insts))
		for i, inst := range insts {
			s, err := CollectGen1(inst.MustGuest())
			if err != nil {
				t.Fatal(err)
			}
			out[i] = Gen1FromSample(s, DefaultPrecision).String()
		}
		return out
	}
	a, b := fps(), fps()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different fingerprints at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestBackgroundTrafficThroughFacade(t *testing.T) {
	prof := USWest1Profile()
	prof.Traffic = DefaultTrafficModel(40, 0.6)
	pl := NewPlatform(7, prof)
	dc := pl.MustRegion(USWest1)
	dc.Scheduler().Advance(2 * time.Hour)
	st := dc.TrafficStats()
	if st.Tenants != 40 {
		t.Errorf("Tenants = %d, want 40", st.Tenants)
	}
	if st.LiveInstances == 0 || st.Utilization <= 0 {
		t.Errorf("warmed traffic world is idle: %+v", st)
	}
	// Same seed, same model → identical load trajectory.
	pl2 := NewPlatform(7, prof)
	pl2.MustRegion(USWest1).Scheduler().Advance(2 * time.Hour)
	if st2 := pl2.MustRegion(USWest1).TrafficStats(); st2 != st {
		t.Errorf("traffic diverged across identical builds: %+v vs %+v", st, st2)
	}
}

func TestMitigatedPlatformThroughFacade(t *testing.T) {
	prof := USEast1Profile()
	prof.Mitigations = Mitigations{TrapAndEmulateTSC: true, TSCScaling: true}
	pl := NewPlatform(9, prof)
	insts, err := pl.MustRegion(USEast1).Account("a").
		DeployService("s", ServiceConfig{}).Launch(30)
	if err != nil {
		t.Fatal(err)
	}
	// Same-host instances now produce different fingerprints: the defense
	// works through the public API too.
	byHost := make(map[HostID]map[string]bool)
	for _, inst := range insts {
		s, err := CollectGen1(inst.MustGuest())
		if err != nil {
			t.Fatal(err)
		}
		fp := Gen1FromSample(s, DefaultPrecision).String()
		id, _ := inst.HostID()
		if byHost[id] == nil {
			byHost[id] = map[string]bool{}
		}
		byHost[id][fp] = true
	}
	splits := 0
	for _, fps := range byHost {
		if len(fps) > 1 {
			splits++
		}
	}
	if splits == 0 {
		t.Error("mitigated platform still produces stable host fingerprints")
	}
}

func TestCampaignJourney(t *testing.T) {
	// The campaign-engine variant of the attack journey: pick a strategy by
	// its CLI name, run the staged pipeline, read the ledger.
	if got := len(AttackStrategies()); got != 3 {
		t.Fatalf("AttackStrategies() = %d entries", got)
	}
	strat, err := AttackStrategyByName("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttackStrategyByName("nope"); err == nil {
		t.Error("unknown strategy resolved through the facade")
	}

	pl := NewPlatform(7, USEast1Profile())
	dc := pl.MustRegion(USEast1)
	vic, err := dc.Account("victim").DeployService("login", ServiceConfig{}).Launch(40)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultAttackConfig()
	cfg.Services = 3
	cfg.InstancesPerLaunch = 300
	cfg.Launches = 4
	camp, err := NewAttackCampaign(dc.Account("attacker"), cfg, Gen1, strat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := camp.Launch(); err != nil {
		t.Fatal(err)
	}
	cov, spies, err := camp.Verify(vic)
	if err != nil {
		t.Fatal(err)
	}
	st := camp.Stats()
	if st.Strategy != "adaptive" || st.Waves == 0 || st.USD <= 0 {
		t.Errorf("ledger incomplete: %+v", st)
	}
	if !cov.AtLeastOne || len(spies) == 0 {
		t.Errorf("campaign found no co-location: %s", cov)
	}
	if st.CoverageFraction() != cov.Fraction() {
		t.Errorf("ledger coverage %v vs measured %v", st.CoverageFraction(), cov.Fraction())
	}
}
