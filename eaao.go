// Package eaao is a Go reproduction of "Everywhere All at Once: Co-Location
// Attacks on Public Cloud FaaS" (ASPLOS 2024).
//
// The package bundles three layers:
//
//   - A deterministic simulator of a Cloud-Run-like FaaS platform
//     (NewPlatform): physical hosts with real TSC physics, accounts,
//     services, container instances, and an orchestrator reproducing the
//     placement behaviours the paper reverse-engineered (base hosts, helper
//     hosts, demand-window load balancing, gradual idle termination).
//   - The paper's attacker toolkit: TSC-based host fingerprinting for the
//     Gen 1 (gVisor) and Gen 2 (VM) sandboxes, the n-way RNG-contention
//     covert channel, scalable co-location verification, and the naive and
//     optimized instance-launching strategies.
//   - The full evaluation harness: every figure and table of the paper can
//     be regenerated with RunExperiment (see Experiments for the catalog).
//
// A minimal end-to-end use:
//
//	pl := eaao.NewPlatform(42, eaao.USEast1Profile())
//	dc := pl.MustRegion(eaao.USEast1)
//	svc := dc.Account("me").DeployService("probe", eaao.ServiceConfig{})
//	insts, _ := svc.Launch(100)
//	g := insts[0].MustGuest()
//	sample, _ := eaao.CollectGen1(g)
//	fp := eaao.Gen1FromSample(sample, eaao.DefaultPrecision)
//	fmt.Println(fp) // the physical host's fingerprint
//
// Everything is deterministic in the seed: identical seeds produce identical
// worlds, launches, fingerprints, and attack outcomes.
package eaao

import (
	"io"
	"time"

	"eaao/internal/core/attack"
	"eaao/internal/core/coloc"
	"eaao/internal/core/covert"
	"eaao/internal/core/extraction"
	"eaao/internal/core/fingerprint"
	"eaao/internal/experiments"
	"eaao/internal/faas"
	"eaao/internal/pricing"
	"eaao/internal/sandbox"
	"eaao/internal/simtime"
)

// Platform simulation types.
type (
	// Platform is the simulated cloud (virtual clock + data centers).
	Platform = faas.Platform
	// Snapshot is an immutable copy-on-write world snapshot: Restore forks
	// byte-identical, fully independent platforms from it (see
	// Platform.Snapshot).
	Snapshot = faas.Snapshot
	// DataCenter is one simulated region.
	DataCenter = faas.DataCenter
	// Region names a data center.
	Region = faas.Region
	// RegionProfile parameterizes a data center's fleet and orchestrator.
	RegionProfile = faas.RegionProfile
	// Account is one tenant identity.
	Account = faas.Account
	// Service is a deployed function.
	Service = faas.Service
	// ServiceConfig configures a deployment (size, sandbox generation).
	ServiceConfig = faas.ServiceConfig
	// Instance is one container instance.
	Instance = faas.Instance
	// HostID is a ground-truth host identity (experiment scoring only;
	// attack code cannot observe it).
	HostID = faas.HostID
	// InstanceSize is a container resource specification (Table 1).
	InstanceSize = faas.InstanceSize
	// TrafficModel parameterizes a region's background-tenant traffic (the
	// living-cloud load the noisesweep experiment and -load flag attach).
	TrafficModel = faas.TrafficModel
	// TrafficStats reports what the background tenants are doing right now.
	TrafficStats = faas.TrafficStats
	// Guest is the sandboxed view attack code runs against.
	Guest = sandbox.Guest
	// Gen identifies the sandbox generation (Gen1 gVisor, Gen2 VM).
	Gen = sandbox.Gen
	// Time is a virtual instant.
	Time = simtime.Time
	// Scheduler is the virtual clock.
	Scheduler = simtime.Scheduler
)

// Placement-policy types (the pluggable orchestrator layer).
type (
	// PlacementPolicy is a region's swappable placement engine.
	PlacementPolicy = faas.PlacementPolicy
	// PlacementRequest is one batch-placement decision's context.
	PlacementRequest = faas.PlacementRequest
	// PlacementBatch is the handle a policy materializes decisions through.
	PlacementBatch = faas.PlacementBatch
	// CloudRunPolicy is the calibrated Cloud Run extraction (the default).
	CloudRunPolicy = faas.CloudRunPolicy
	// RandomUniformPolicy is the §6 co-location-resistant defense.
	RandomUniformPolicy = faas.RandomUniformPolicy
	// LeastLoadedPolicy is a load-driven bin-packing orchestrator.
	LeastLoadedPolicy = faas.LeastLoadedPolicy
	// PlacementEvent is one audited placement decision.
	PlacementEvent = faas.PlacementEvent
	// PlacementTracer receives placement decisions as they happen.
	PlacementTracer = faas.PlacementTracer
	// TraceRing is a bounded in-memory PlacementTracer.
	TraceRing = faas.TraceRing
)

// Fault-plane types (deterministic injected failures; zero values disable).
type (
	// FaultPlan is a region's seeded fault-injection configuration.
	FaultPlan = faas.FaultPlan
	// FaultCounters tallies the faults a data center actually injected.
	FaultCounters = faas.FaultCounters
)

// ErrLaunchFault marks transient injected launch failures (retryable).
var ErrLaunchFault = faas.ErrLaunchFault

// ErrProbeFault marks injected fingerprint-probe failures.
var ErrProbeFault = sandbox.ErrProbeFault

// UniformFaultPlan derives every fault rate from one severity level.
func UniformFaultPlan(level float64) FaultPlan { return faas.UniformFaultPlan(level) }

// Fingerprinting and verification types (the paper's core contribution).
type (
	// Sample is one raw Gen 1 measurement (model, TSC, wall time).
	Sample = fingerprint.Sample
	// Gen1Fingerprint identifies a host by CPU model + rounded boot time.
	Gen1Fingerprint = fingerprint.Gen1
	// Gen2Fingerprint identifies a host by its refined TSC frequency.
	Gen2Fingerprint = fingerprint.Gen2
	// FingerprintKey is the comparable fingerprint identity used to group
	// instances (VerifyItem.Fingerprint); build one with the fingerprints'
	// Key methods.
	FingerprintKey = fingerprint.Key
	// FingerprintHistory tracks derived boot times over time (drift).
	FingerprintHistory = fingerprint.History
	// Drift is a fitted linear boot-time drift.
	Drift = fingerprint.Drift
	// FreqMeasurement is a measured-TSC-frequency estimate (method 2).
	FreqMeasurement = fingerprint.FreqMeasurement
	// CovertConfig parameterizes the RNG-contention covert channel.
	CovertConfig = covert.Config
	// CovertTester runs CTest invocations and accounts their cost.
	CovertTester = covert.Tester
	// CovertChannel is one pluggable covert-channel primitive (RNG, memory
	// bus, LLC); build testers for it with NewChannelCovertTester.
	CovertChannel = covert.Channel
	// CovertRunner is the tester capability surface shared by the
	// single-channel Tester and the majority-combined MultiCovertTester.
	CovertRunner = covert.Runner
	// MultiCovertTester combines several channels by majority vote.
	MultiCovertTester = covert.MultiTester
	// ChannelModel is one channel family's physical parameters in the
	// platform registry (round time, bandwidth, load-sensitive noise).
	ChannelModel = faas.ChannelModel
	// ChannelFaultRates is a FaultPlan's per-channel misfire override.
	ChannelFaultRates = faas.ChannelFaultRates
	// ChannelCost is a campaign ledger's per-channel verify-stage split.
	ChannelCost = attack.ChannelCost
	// ColocTester is the covert capability co-location verification needs;
	// every CovertRunner satisfies it.
	ColocTester = coloc.Tester
	// VerifyItem is one instance tagged with its fingerprint.
	VerifyItem = coloc.Item
	// VerifyOptions tunes the scalable verification.
	VerifyOptions = coloc.Options
	// VerifyResult is a verified co-location clustering.
	VerifyResult = coloc.Result
)

// Attack-campaign types (the pluggable attack layer).
type (
	// AttackConfig parameterizes a launching campaign.
	AttackConfig = attack.Config
	// Campaign is the staged attack pipeline: launch → fingerprint →
	// verify → score, driven by a LaunchStrategy.
	Campaign = attack.Campaign
	// CampaignResult is the outcome of a campaign's launch stage.
	CampaignResult = attack.CampaignResult
	// CampaignStats is the per-stage cost/coverage ledger of a campaign.
	CampaignStats = attack.CampaignStats
	// CampaignSink is the engine surface a LaunchStrategy emits waves
	// through.
	CampaignSink = attack.CampaignSink
	// LaunchStrategy is a pluggable §5.2 launching behavior.
	LaunchStrategy = attack.LaunchStrategy
	// Wave is one launch of one service as a strategy observes it.
	Wave = attack.Wave
	// NaiveStrategy is launching Strategy 1 (cold launches only).
	NaiveStrategy = attack.NaiveStrategy
	// OptimizedStrategy is launching Strategy 2 (demand priming).
	OptimizedStrategy = attack.OptimizedStrategy
	// AdaptiveStrategy stops launching when marginal host yield dries up.
	AdaptiveStrategy = attack.AdaptiveStrategy
	// Coverage is an attacker-vs-victim co-location measurement.
	Coverage = attack.Coverage
	// CoverageOpts tunes a coverage measurement (fault-recovery budgets).
	CoverageOpts = attack.CoverageOpts
	// CoverageFaults meters probe-fault recovery during a measurement.
	CoverageFaults = attack.CoverageFaults
	// FootprintTracker accumulates apparent hosts across launches.
	FootprintTracker = attack.FootprintTracker
	// ScaleEstimate is a data-center size estimation (Fig. 12).
	ScaleEstimate = attack.ScaleEstimate
)

// Multi-region fleet types (the cross-region campaign layer).
type (
	// Fleet is a set of independent region worlds attacked as one target.
	Fleet = faas.Fleet
	// FleetCampaign shards one campaign across every region of a Fleet,
	// with a Planner reallocating the launch-round budget between regions.
	FleetCampaign = attack.FleetCampaign
	// FleetStats is the merged per-region ledger of a fleet campaign.
	FleetStats = attack.FleetStats
	// Planner decides which region shards get another launch round.
	Planner = attack.Planner
	// ShardStatus is one shard's attacker-visible state at a barrier.
	ShardStatus = attack.ShardStatus
	// ShardVerification is one region's verify-stage outcome.
	ShardVerification = attack.ShardVerification
	// StaticEvenPlanner splits the round budget evenly (the baseline).
	StaticEvenPlanner = attack.StaticEvenPlanner
	// ProportionalPlanner splits the budget by first-round yield.
	ProportionalPlanner = attack.ProportionalPlanner
	// CrossRegionPlanner drains saturated regions and re-funds yielding ones.
	CrossRegionPlanner = attack.CrossRegionPlanner
)

// NewFleet builds one independent region world per profile from a shared
// seed. Each region is byte-identical to the same region built alone with
// the same seed, so a fleet attack decomposes exactly into its per-region
// shards.
func NewFleet(seed uint64, profiles ...RegionProfile) (*Fleet, error) {
	return faas.NewFleet(seed, profiles...)
}

// FleetOf wraps existing regions into a fleet. Multi-region fleets need one
// platform per region (each shard must own its virtual clock); a one-region
// fleet may wrap any platform's region.
func FleetOf(regions ...*DataCenter) (*Fleet, error) { return faas.FleetOf(regions...) }

// NewFleetAttackCampaign binds a launch strategy, an account identity and a
// budget planner to a fleet. A nil planner selects the strategy's native
// continue/stop rule, making a one-region fleet byte-identical to the legacy
// single-region campaign.
func NewFleetAttackCampaign(fleet *Fleet, account string, cfg AttackConfig, gen Gen,
	strategy LaunchStrategy, planner Planner) (*FleetCampaign, error) {
	return attack.NewFleetCampaign(fleet, account, cfg, gen, strategy, planner)
}

// AttackPlanners returns one instance of every built-in budget planner.
func AttackPlanners() []Planner { return attack.Planners() }

// AttackPlannerByName resolves a built-in budget planner from its name
// ("static-even", "proportional", "adaptive").
func AttackPlannerByName(name string) (Planner, error) { return attack.PlannerByName(name) }

// MergeCoverages folds per-shard coverages into one fleet-wide measurement.
func MergeCoverages(covs ...Coverage) Coverage { return attack.MergeCoverages(covs...) }

// Extraction (threat-model step 2) types.
type (
	// ExtractionSchedule is a victim's secret-dependent execution plan.
	ExtractionSchedule = extraction.Schedule
	// ExtractionTrace is an attacker's recovered activity trace.
	ExtractionTrace = extraction.Trace
	// MonitorConfig tunes the contention monitor.
	MonitorConfig = extraction.MonitorConfig
	// TargetBook records victim-host fingerprints for re-attacks.
	TargetBook = attack.TargetBook
	// Mitigations are the §6 TSC-masking platform defenses.
	Mitigations = sandbox.Mitigations
)

// Experiment harness types.
type (
	// Experiment describes one runnable paper artifact.
	Experiment = experiments.Descriptor
	// ExperimentContext configures an experiment run.
	ExperimentContext = experiments.Context
	// ExperimentResult holds an experiment's figures, tables and metrics.
	ExperimentResult = experiments.Result
	// ExperimentOutcome pairs one experiment id with its result or error.
	ExperimentOutcome = experiments.Outcome
)

// Pricing types.
type (
	// Rates are per-resource prices.
	Rates = pricing.Rates
)

// Sandbox generations.
const (
	Gen1 = sandbox.Gen1
	Gen2 = sandbox.Gen2
)

// The three studied Cloud Run regions.
const (
	USEast1    = faas.USEast1
	USCentral1 = faas.USCentral1
	USWest1    = faas.USWest1
)

// DefaultPrecision is the paper's default fingerprint rounding (1 s).
const DefaultPrecision = fingerprint.DefaultPrecision

// Covert-channel resource families (the ChannelModel registry's keys).
const (
	ResourceRNG    = faas.ResourceRNG
	ResourceMemBus = faas.ResourceMemBus
	ResourceLLC    = faas.ResourceLLC
)

// PlacementPolicies returns one instance of every built-in placement policy.
func PlacementPolicies() []PlacementPolicy { return faas.Policies() }

// PlacementPolicyByName resolves a built-in policy from its name
// ("cloudrun", "random-uniform", "least-loaded", plus short aliases).
func PlacementPolicyByName(name string) (PlacementPolicy, error) {
	return faas.PolicyByName(name)
}

// NewTraceRing returns a bounded placement tracer holding capacity events.
func NewTraceRing(capacity int) *TraceRing { return faas.NewTraceRing(capacity) }

// Container sizes of Table 1.
var (
	SizePico   = faas.SizePico
	SizeSmall  = faas.SizeSmall
	SizeMedium = faas.SizeMedium
	SizeLarge  = faas.SizeLarge
)

// NewPlatform builds a simulated cloud from a seed and region profiles; it
// panics on an invalid profile set (use faas.NewPlatform via the internal
// API for error returns).
func NewPlatform(seed uint64, profiles ...RegionProfile) *Platform {
	return faas.MustPlatform(seed, profiles...)
}

// DefaultProfiles returns the three studied data centers at full scale.
func DefaultProfiles() []RegionProfile { return faas.DefaultProfiles() }

// USEast1Profile returns the default us-east1 data center profile.
func USEast1Profile() RegionProfile { return faas.USEast1Profile() }

// USCentral1Profile returns the default us-central1 data center profile.
func USCentral1Profile() RegionProfile { return faas.USCentral1Profile() }

// USWest1Profile returns the default us-west1 data center profile.
func USWest1Profile() RegionProfile { return faas.USWest1Profile() }

// DefaultTrafficModel returns a background-traffic model with the stock
// Zipf/burst/diurnal shape, sized to the given tenant count and steady-state
// fleet utilization target. Assign it to RegionProfile.Traffic; the zero
// TrafficModel keeps a region quiet and byte-identical to a traffic-free
// build.
func DefaultTrafficModel(tenants int, util float64) TrafficModel {
	return faas.DefaultTrafficModel(tenants, util)
}

// CollectGen1 takes one Gen 1 fingerprint measurement inside a guest.
func CollectGen1(g *Guest) (Sample, error) { return fingerprint.CollectGen1(g) }

// CollectGen2 reads a Gen 2 fingerprint inside a guest VM.
func CollectGen2(g *Guest) (Gen2Fingerprint, error) { return fingerprint.CollectGen2(g) }

// Duration re-exports time.Duration for API symmetry.
type Duration = time.Duration

// Gen1FromSample quantizes a sample into a fingerprint.
func Gen1FromSample(s Sample, precision Duration) Gen1Fingerprint {
	return fingerprint.Gen1FromSample(s, precision)
}

// NewCovertTester builds a covert-channel tester with the paper's defaults
// (RNG channel, 60 rounds, 30 votes, 100 ms per test).
func NewCovertTester(sched *Scheduler) *CovertTester {
	return covert.NewTester(sched, covert.DefaultConfig())
}

// NewCovertTesterWith builds a tester with an explicit configuration (e.g.
// MemBusCovertConfig, or a Calibrate result).
func NewCovertTesterWith(sched *Scheduler, cfg CovertConfig) *CovertTester {
	return covert.NewTester(sched, cfg)
}

// MemBusCovertConfig returns the memory-bus channel configuration used by
// earlier co-location studies: workable, but ~30x slower per test.
func MemBusCovertConfig() CovertConfig { return covert.MemBusConfig() }

// LLCCovertConfig returns the LLC contention-channel configuration: tests in
// 20 ms instead of 100 ms, at the price of load-sensitive noise.
func LLCCovertConfig() CovertConfig { return covert.LLCConfig() }

// CovertChannelNames lists the channel selectors CovertRunnerFor accepts
// ("rng", "llc", "membus", "combined").
func CovertChannelNames() []string { return covert.ChannelNames() }

// ValidCovertChannel reports whether name selects a covert channel: one of
// CovertChannelNames, or empty for the default RNG channel.
func ValidCovertChannel(name string) bool { return covert.ValidChannel(name) }

// CovertChannelByName resolves one pluggable channel primitive ("" and "rng"
// are the paper's RNG channel; "llc", "membus").
func CovertChannelByName(name string) (CovertChannel, error) {
	return covert.ChannelByName(name)
}

// CovertRunnerFor builds a tester for a channel selector: a single-channel
// tester for "rng"/"llc"/"membus", or the majority-combined tester of all
// three for "combined". voteBudget enables fault-recovery majority voting
// (0/1 = single shot).
func CovertRunnerFor(name string, sched *Scheduler, voteBudget int) (CovertRunner, error) {
	return covert.RunnerFor(name, sched, voteBudget)
}

// NewChannelCovertTester builds a single-channel tester driving an explicit
// channel primitive with an explicit configuration.
func NewChannelCovertTester(sched *Scheduler, ch CovertChannel, cfg CovertConfig) *CovertTester {
	return covert.NewChannelTester(sched, ch, cfg)
}

// NewMultiCovertTester combines channel primitives into one majority-voting
// tester: a pair is co-located iff a majority of the channels say so.
func NewMultiCovertTester(sched *Scheduler, voteBudget int, channels ...CovertChannel) *MultiCovertTester {
	return covert.NewMultiTester(sched, voteBudget, channels...)
}

// ChannelModels returns the platform's channel-model registry in Resource
// order (rng, membus, llc).
func ChannelModels() []ChannelModel { return faas.Channels() }

// CalibrateCovertChannel measures the background contention rate from a
// probe instance and derives a vote threshold with comfortable margin.
func CalibrateCovertChannel(base CovertConfig, probe *Instance, sampleRounds int) (CovertConfig, error) {
	return covert.Calibrate(base, probe, sampleRounds)
}

// CalibrateChannel is CalibrateCovertChannel through a pluggable channel
// primitive: sampling and threshold derivation use the channel's own round
// primitive and tuned base configuration.
func CalibrateChannel(ch CovertChannel, probe *Instance, sampleRounds int) (CovertConfig, error) {
	return covert.CalibrateChannel(ch, probe, sampleRounds)
}

// LoadTargetBook reads a re-attack fingerprint book written by
// TargetBook.Save.
func LoadTargetBook(r io.Reader) (*TargetBook, error) { return attack.LoadTargetBook(r) }

// VerifyColocation runs the scalable §4.3 verification. Any ColocTester
// works: a plain CovertTester, a channel tester, or the majority-combined
// MultiCovertTester.
func VerifyColocation(tester ColocTester, items []VerifyItem, opt VerifyOptions) (*VerifyResult, error) {
	return coloc.Verify(tester, items, opt)
}

// DefaultVerifyOptions returns the paper's verification parameters (m = 2).
func DefaultVerifyOptions() VerifyOptions { return coloc.DefaultOptions() }

// DefaultAttackConfig returns the optimized-strategy campaign parameters.
func DefaultAttackConfig() AttackConfig { return attack.DefaultConfig() }

// RunNaiveAttack executes launching Strategy 1 (cold launches only).
func RunNaiveAttack(acct *Account, cfg AttackConfig, gen Gen) (*CampaignResult, error) {
	return attack.RunNaive(acct, cfg, gen)
}

// RunOptimizedAttack executes launching Strategy 2 (demand priming).
func RunOptimizedAttack(acct *Account, cfg AttackConfig, gen Gen) (*CampaignResult, error) {
	return attack.RunOptimized(acct, cfg, gen)
}

// NewAttackCampaign binds a launch strategy to an attacker account; run its
// stages with Campaign.Launch and Campaign.Verify, and read the cost ledger
// back with Campaign.Stats.
func NewAttackCampaign(acct *Account, cfg AttackConfig, gen Gen, strategy LaunchStrategy) (*Campaign, error) {
	return attack.NewCampaign(acct, cfg, gen, strategy)
}

// AttackStrategies returns one instance of every built-in launch strategy.
func AttackStrategies() []LaunchStrategy { return attack.Strategies() }

// AttackStrategyByName resolves a built-in launch strategy from its name
// ("naive", "optimized", "adaptive").
func AttackStrategyByName(name string) (LaunchStrategy, error) {
	return attack.StrategyByName(name)
}

// MeasureCoverage verifies attacker-victim co-location.
func MeasureCoverage(tester ColocTester, attacker, victims []*Instance, precision Duration) (Coverage, error) {
	return attack.MeasureCoverage(tester, attacker, victims, precision)
}

// MeasureCoverageDetail is MeasureCoverage plus the verified co-located
// attacker instances (the spies for extraction and re-attack targeting).
func MeasureCoverageDetail(tester ColocTester, attacker, victims []*Instance, precision Duration) (Coverage, []*Instance, error) {
	return attack.MeasureCoverageDetail(tester, attacker, victims, precision)
}

// NewTargetBook creates a re-attack fingerprint book (§5.2 optimization).
func NewTargetBook(precision Duration) *TargetBook { return attack.NewTargetBook(precision) }

// MonitorExtraction runs the post-co-location spy loop (threat model step 2).
func MonitorExtraction(sched *Scheduler, spy *Instance, s ExtractionSchedule, cfg MonitorConfig) (ExtractionTrace, error) {
	return extraction.Monitor(sched, spy, s, cfg)
}

// DefaultMonitorConfig returns the extraction monitor defaults.
func DefaultMonitorConfig() MonitorConfig { return extraction.DefaultMonitorConfig() }

// NewFootprintTracker builds an apparent-host tracker at the given
// fingerprint precision.
func NewFootprintTracker(precision Duration) *FootprintTracker {
	return attack.NewFootprintTracker(precision)
}

// CloudRunRates returns the published Cloud Run prices.
func CloudRunRates() Rates { return pricing.CloudRunRates() }

// Experiments lists every reproducible paper artifact in order.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment regenerates one paper artifact ("fig4" ... "gen2cov").
func RunExperiment(id string, ctx ExperimentContext) (*ExperimentResult, error) {
	return experiments.Run(id, ctx)
}

// RunExperiments regenerates several artifacts through the bounded trial
// pool (ctx.Jobs workers; each experiment runs sequentially inside so the
// cross-experiment and intra-experiment parallelism do not multiply).
// Outcomes are returned in input order, one per id, failures included.
func RunExperiments(ids []string, ctx ExperimentContext) []ExperimentOutcome {
	return experiments.RunAll(ids, ctx)
}
