package eaao_test

// Godoc examples for the main user journeys. These run as tests, so the
// documented outputs stay truthful.

import (
	"fmt"
	"time"

	"eaao"
)

// Fingerprint a physical host from inside a sandboxed instance (Eq. 4.1).
func ExampleCollectGen1() {
	pl := eaao.NewPlatform(2024, eaao.USEast1Profile())
	dc := pl.MustRegion(eaao.USEast1)
	insts, _ := dc.Account("me").DeployService("probe", eaao.ServiceConfig{}).Launch(1)

	sample, _ := eaao.CollectGen1(insts[0].MustGuest())
	fp := eaao.Gen1FromSample(sample, eaao.DefaultPrecision)
	fmt.Println(fp)
	// Output: gen1{Intel(R) Xeon(R) CPU @ 2.20GHz, boot=2023-05-02T08:25:48Z, p=1s}
}

// Verify co-location of many instances with O(hosts) covert-channel tests.
func ExampleVerifyColocation() {
	pl := eaao.NewPlatform(2024, eaao.USEast1Profile())
	dc := pl.MustRegion(eaao.USEast1)
	insts, _ := dc.Account("me").DeployService("probe", eaao.ServiceConfig{}).Launch(44)

	items := make([]eaao.VerifyItem, len(insts))
	for i, inst := range insts {
		s, _ := eaao.CollectGen1(inst.MustGuest())
		fp := eaao.Gen1FromSample(s, eaao.DefaultPrecision)
		items[i] = eaao.VerifyItem{Inst: inst, Fingerprint: fp.Key(), ConflictKey: fp.Model}
	}
	tester := eaao.NewCovertTester(pl.Scheduler())
	res, _ := eaao.VerifyColocation(tester, items, eaao.DefaultVerifyOptions())
	fmt.Printf("%d instances → %d verified hosts in %d tests (pairwise would need %d)\n",
		len(insts), len(res.Clusters), res.Tests, len(insts)*(len(insts)-1)/2)
	// Output: 44 instances → 4 verified hosts in 25 tests (pairwise would need 946)
}

// The optimized launching strategy against a victim, end to end.
func ExampleRunOptimizedAttack() {
	pl := eaao.NewPlatform(7, eaao.USEast1Profile())
	dc := pl.MustRegion(eaao.USEast1)

	vic, _ := dc.Account("victim").DeployService("login", eaao.ServiceConfig{}).Launch(40)

	cfg := eaao.DefaultAttackConfig()
	cfg.Services = 3
	cfg.InstancesPerLaunch = 300
	cfg.Launches = 4
	camp, _ := eaao.RunOptimizedAttack(dc.Account("attacker"), cfg, eaao.Gen1)

	tester := eaao.NewCovertTester(pl.Scheduler())
	cov, _ := eaao.MeasureCoverage(tester, camp.Live, vic, cfg.Precision)
	fmt.Println("co-located with at least one victim instance:", cov.AtLeastOne)
	// Output: co-located with at least one victim instance: true
}

// Track a fingerprint's drift and predict its expiration (§4.4.2).
func ExampleDrift_Expiration() {
	// A host whose derived boot time drifts +0.2 s/day, currently sitting
	// 0.3 s below a 1-second rounding boundary.
	d := eaao.Drift{Rate: 0.2 / 86400, LastBootSec: 1000.2}
	exp, ok := d.Expiration(eaao.DefaultPrecision)
	fmt.Println(ok, exp.Round(time.Hour))
	// Output: true 36h0m0s
}
