module eaao

go 1.22
