// Command hostinfo fingerprints the machine it runs on using the paper's
// Gen 1 primitive against real hardware: it reads the timestamp counter
// (RDTSC on amd64), measures the actual TSC frequency with wall-clock pairs
// (method 2 of §4.2), and derives the boot time via Eq. 4.1.
//
// Run it twice and the derived boot times match — that is the fingerprint.
// Run it inside a VM with TSC offsetting and it reports the VM's boot time
// instead of the host's — the Gen 2 limitation the paper works around with
// frequency fingerprints.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eaao/internal/hwtsc"
)

func main() {
	interval := flag.Duration("interval", 100*time.Millisecond, "wall-clock interval between TSC reads (ΔT_w)")
	reps := flag.Int("reps", 10, "measurement repetitions")
	precision := flag.Duration("precision", time.Second, "boot-time rounding precision (p_boot)")
	flag.Parse()

	if hwtsc.Supported() {
		fmt.Println("timestamp counter: hardware RDTSC")
	} else {
		fmt.Println("timestamp counter: synthetic (non-amd64 fallback; values are process-relative)")
	}

	m, err := hwtsc.MeasureFrequency(*interval, *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hostinfo:", err)
		os.Exit(1)
	}
	fmt.Printf("measured TSC frequency: %.0f Hz (stddev %.0f Hz over %d reps)\n",
		m.Hz, m.StdHz, len(m.Samples))
	if m.StdHz >= 10e3 {
		fmt.Println("warning: frequency measurement is unstable (a 'problematic' host in the paper's terms)")
	}

	tsc, wall := hwtsc.ReadPaired()
	boot := hwtsc.BootTime(tsc, wall, m.Hz)
	uptime := wall.Sub(boot)
	rounded := boot.Truncate(*precision)

	fmt.Printf("tsc value:              %d\n", tsc)
	fmt.Printf("wall clock:             %s\n", wall.Format(time.RFC3339Nano))
	fmt.Printf("derived uptime:         %s\n", uptime.Round(time.Second))
	fmt.Printf("derived boot time:      %s\n", boot.Format(time.RFC3339Nano))
	fmt.Printf("fingerprint (p=%v):     %s\n", *precision, rounded.Format(time.RFC3339))
	fmt.Println("\nnote: inside a VM with TSC offsetting this is the VM's boot time, not the host's (§4.5)")
}
