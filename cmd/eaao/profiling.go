package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startCPUProfile begins CPU profiling into path and returns the stop
// function to defer. Profiles are standard runtime/pprof output (gzipped
// protobuf), readable with `go tool pprof`.
func startCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile snapshots the allocation profile into path. It runs a GC
// first so the heap numbers reflect live data rather than collection timing;
// the "allocs" profile still carries cumulative allocation counts, which is
// what hot-path hunting needs.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
