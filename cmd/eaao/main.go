// Command eaao runs the paper-reproduction experiments.
//
// Usage:
//
//	eaao list                      # list every reproducible artifact
//	eaao run fig4 [fig5 ...]       # regenerate specific figures/tables
//	eaao run all                   # regenerate everything
//
// Flags:
//
//	-seed N    root seed (default 9)
//	-quick     reduced scale (~4x smaller fleet, fewer reps)
//	-big       headroom scale for the scale experiment (80k hosts, 640 tenants, >1M instances)
//	-jobs N    worker-pool width for trial repetitions (default NumCPU; 1 = sequential)
//	-parallel  run whole experiments concurrently through the same bounded pool
//	-policy P  override every region's placement policy (cloudrun, random-uniform, least-loaded)
//	-faults L  inject deterministic faults at uniform level L in [0,1] (0 = fault-free)
//	-channel C covert channel for campaign verification (rng, llc, membus, combined; empty = rng)
//	-load U    background-tenant traffic at target utilization U in [0, 1.5] (0 = quiet fleet)
//	-csv       also print each table as CSV
//	-cpuprofile F  write a CPU profile of the run to F (runtime/pprof)
//	-memprofile F  write an allocation profile at exit to F
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"eaao"
)

func main() {
	// All work happens in run so that deferred teardown (profile writers)
	// executes before the process exits.
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 9, "root random seed")
	quick := flag.Bool("quick", false, "reduced scale for fast runs")
	big := flag.Bool("big", false, "headroom scale for the scale experiment (80k hosts, 640 tenants, >1M instances created)")
	csv := flag.Bool("csv", false, "print tables as CSV too")
	svgDir := flag.String("svg", "", "directory to write figure SVGs into")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text")
	parallel := flag.Bool("parallel", false, "run experiments concurrently (each owns its own simulated world)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "max concurrent trial workers (1 = fully sequential)")
	policyName := flag.String("policy", "", "override the placement policy in every region (cloudrun, random-uniform, least-loaded)")
	faultLevel := flag.Float64("faults", 0, "uniform injected fault level in [0,1] (0 = fault-free; scales launch, preemption, channel and probe fault rates together)")
	channel := flag.String("channel", "", "covert channel for campaign verification (rng, llc, membus, combined; empty = rng)")
	load := flag.Float64("load", 0, "background-tenant target utilization in [0, 1.5] (0 = quiet fleet, byte-identical to a traffic-free build)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) > 0 && (args[0] == "run" || args[0] == "list") {
		// Accept global flags after the subcommand too (flag.Parse stops at
		// the first positional, so `eaao run fig11a -quick` would otherwise
		// read -quick as an experiment id). The attack subcommand keeps its
		// own flag set and is left alone.
		args = append(args[:1], reparseTail(args[1:])...)
	}

	if *cpuProfile != "" {
		stop, err := startCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eaao: %v\n", err)
			return 1
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeMemProfile(*memProfile); err != nil {
				fmt.Fprintf(os.Stderr, "eaao: %v\n", err)
			}
		}()
	}

	var policy eaao.PlacementPolicy
	if *policyName != "" {
		var err error
		policy, err = eaao.PlacementPolicyByName(*policyName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eaao: %v\n", err)
			return 2
		}
	}

	faults := eaao.UniformFaultPlan(*faultLevel)
	if err := faults.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "eaao: %v\n", err)
		return 2
	}

	if !eaao.ValidCovertChannel(*channel) {
		fmt.Fprintf(os.Stderr, "eaao: unknown covert channel %q (rng, llc, membus, combined)\n", *channel)
		return 2
	}

	if *load < 0 || *load > 1.5 {
		fmt.Fprintf(os.Stderr, "eaao: -load %v out of range [0, 1.5]\n", *load)
		return 2
	}

	if len(args) == 0 {
		usage()
		return 2
	}

	switch args[0] {
	case "attack":
		if err := runAttack(args[1:], *seed, *quick, policy, faults, *channel, *load); err != nil {
			fmt.Fprintf(os.Stderr, "eaao attack: %v\n", err)
			return 1
		}
	case "list":
		for _, d := range eaao.Experiments() {
			fmt.Printf("%-12s %-55s %s\n", d.ID, d.Title, d.PaperRef)
		}
	case "run":
		ids := args[1:]
		if len(ids) == 0 {
			fmt.Fprintln(os.Stderr, "eaao run: no experiment ids (try 'eaao list' or 'eaao run all')")
			return 2
		}
		if len(ids) == 1 && ids[0] == "all" {
			ids = nil
			for _, d := range eaao.Experiments() {
				ids = append(ids, d.ID)
			}
		}
		ctx := eaao.ExperimentContext{Seed: *seed, Quick: *quick, Big: *big, Jobs: *jobs, Policy: policy, Faults: faults, Channel: *channel, Load: *load}

		// Each experiment builds its own deterministic world, so runs are
		// independent and can proceed concurrently; results print in the
		// requested order either way. With -parallel the experiments fan
		// out through the bounded trial pool (-jobs workers) and each runs
		// sequentially inside; without it, experiments run one at a time
		// and each parallelizes its own trial repetitions.
		var outcomes []eaao.ExperimentOutcome
		if *parallel {
			outcomes = eaao.RunExperiments(ids, ctx)
		} else {
			for _, id := range ids {
				res, err := eaao.RunExperiment(id, ctx)
				outcomes = append(outcomes, eaao.ExperimentOutcome{ID: id, Res: res, Err: err})
			}
		}
		failures := 0
		for _, oc := range outcomes {
			if oc.Err != nil {
				fmt.Fprintf(os.Stderr, "eaao: %s: %v\n", oc.ID, oc.Err)
				failures++
				continue
			}
			res := oc.Res
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if err := enc.Encode(res); err != nil {
					fmt.Fprintf(os.Stderr, "eaao: %s: %v\n", oc.ID, err)
					failures++
					continue
				}
			} else {
				fmt.Print(res.String())
			}
			if *csv {
				for _, t := range res.Tables {
					fmt.Println(t.CSV())
				}
			}
			if *svgDir != "" {
				if err := writeSVGs(*svgDir, res); err != nil {
					fmt.Fprintf(os.Stderr, "eaao: %s: %v\n", oc.ID, err)
					failures++
					continue
				}
			}
			if !*jsonOut {
				elapsed := time.Duration(res.Metrics["runtime_wall_s"] * float64(time.Second))
				fmt.Printf("(%s completed in %v)\n\n", oc.ID, elapsed.Round(time.Millisecond))
			}
		}
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "eaao: %d of %d experiments failed\n", failures, len(outcomes))
			return 1
		}
	default:
		usage()
		return 2
	}
	return 0
}

// reparseTail separates positional arguments from global flags that appear
// after the subcommand, feeding each flag run back through the command-line
// flag set. Returns the positionals in order.
func reparseTail(args []string) []string {
	var pos []string
	for len(args) > 0 {
		a := args[0]
		if len(a) > 1 && a[0] == '-' {
			flag.CommandLine.Parse(args)
			args = flag.CommandLine.Args()
			continue
		}
		pos = append(pos, a)
		args = args[1:]
	}
	return pos
}

// writeSVGs renders every figure of a result into dir. Figures whose x axis
// spans several orders of magnitude (the p_boot sweep) use a log scale.
func writeSVGs(dir string, res *eaao.ExperimentResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, fig := range res.Figures {
		logX := false
		for _, s := range fig.Series {
			if len(s.X) >= 2 && s.X[0] > 0 && s.X[len(s.X)-1]/s.X[0] >= 1000 {
				logX = true
			}
		}
		path := filepath.Join(dir, fig.ID+".svg")
		if err := os.WriteFile(path, []byte(fig.SVG(720, 400, logX)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `eaao — "Everywhere All at Once" (ASPLOS 2024) reproduction

usage:
  eaao [flags] list
  eaao [flags] run <id>... | all
  eaao [flags] attack [-region R] [-strategy naive|optimized|adaptive] [-channel rng|llc|membus|combined] [-load U] ...
  eaao [flags] attack -regions R1,R2,... [-planner static-even|proportional|adaptive]

flags:
`)
	flag.PrintDefaults()
}
