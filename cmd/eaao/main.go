// Command eaao runs the paper-reproduction experiments.
//
// Usage:
//
//	eaao list                      # list every reproducible artifact
//	eaao run fig4 [fig5 ...]       # regenerate specific figures/tables
//	eaao run all                   # regenerate everything
//
// Flags:
//
//	-seed N    root seed (default 1)
//	-quick     reduced scale (~4x smaller fleet, fewer reps)
//	-csv       also print each table as CSV
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"eaao"
)

func main() {
	seed := flag.Uint64("seed", 9, "root random seed")
	quick := flag.Bool("quick", false, "reduced scale for fast runs")
	csv := flag.Bool("csv", false, "print tables as CSV too")
	svgDir := flag.String("svg", "", "directory to write figure SVGs into")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text")
	parallel := flag.Bool("parallel", false, "run experiments concurrently (each owns its own simulated world)")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	switch args[0] {
	case "attack":
		if err := runAttack(args[1:], *seed, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "eaao attack: %v\n", err)
			os.Exit(1)
		}
	case "list":
		for _, d := range eaao.Experiments() {
			fmt.Printf("%-12s %-55s %s\n", d.ID, d.Title, d.PaperRef)
		}
	case "run":
		ids := args[1:]
		if len(ids) == 0 {
			fmt.Fprintln(os.Stderr, "eaao run: no experiment ids (try 'eaao list' or 'eaao run all')")
			os.Exit(2)
		}
		if len(ids) == 1 && ids[0] == "all" {
			ids = nil
			for _, d := range eaao.Experiments() {
				ids = append(ids, d.ID)
			}
		}
		ctx := eaao.ExperimentContext{Seed: *seed, Quick: *quick}

		// Each experiment builds its own deterministic world, so runs are
		// independent and can proceed concurrently; results print in the
		// requested order either way.
		type outcome struct {
			res     *eaao.ExperimentResult
			err     error
			elapsed time.Duration
		}
		outcomes := make([]outcome, len(ids))
		if *parallel {
			var wg sync.WaitGroup
			for i, id := range ids {
				wg.Add(1)
				go func(i int, id string) {
					defer wg.Done()
					start := time.Now()
					res, err := eaao.RunExperiment(id, ctx)
					outcomes[i] = outcome{res, err, time.Since(start)}
				}(i, id)
			}
			wg.Wait()
		}
		for i, id := range ids {
			var res *eaao.ExperimentResult
			var err error
			var elapsed time.Duration
			if *parallel {
				res, err, elapsed = outcomes[i].res, outcomes[i].err, outcomes[i].elapsed
			} else {
				start := time.Now()
				res, err = eaao.RunExperiment(id, ctx)
				elapsed = time.Since(start)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "eaao: %s: %v\n", id, err)
				os.Exit(1)
			}
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if err := enc.Encode(res); err != nil {
					fmt.Fprintf(os.Stderr, "eaao: %s: %v\n", id, err)
					os.Exit(1)
				}
			} else {
				fmt.Print(res.String())
			}
			if *csv {
				for _, t := range res.Tables {
					fmt.Println(t.CSV())
				}
			}
			if *svgDir != "" {
				if err := writeSVGs(*svgDir, res); err != nil {
					fmt.Fprintf(os.Stderr, "eaao: %s: %v\n", id, err)
					os.Exit(1)
				}
			}
			if !*jsonOut {
				fmt.Printf("(%s completed in %v)\n\n", id, elapsed.Round(time.Millisecond))
			}
		}
	default:
		usage()
		os.Exit(2)
	}
}

// writeSVGs renders every figure of a result into dir. Figures whose x axis
// spans several orders of magnitude (the p_boot sweep) use a log scale.
func writeSVGs(dir string, res *eaao.ExperimentResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, fig := range res.Figures {
		logX := false
		for _, s := range fig.Series {
			if len(s.X) >= 2 && s.X[0] > 0 && s.X[len(s.X)-1]/s.X[0] >= 1000 {
				logX = true
			}
		}
		path := filepath.Join(dir, fig.ID+".svg")
		if err := os.WriteFile(path, []byte(fig.SVG(720, 400, logX)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `eaao — "Everywhere All at Once" (ASPLOS 2024) reproduction

usage:
  eaao [flags] list
  eaao [flags] run <id>... | all
  eaao [flags] attack [-region R] [-strategy naive|optimized] [-victims N] ...

flags:
`)
	flag.PrintDefaults()
}
