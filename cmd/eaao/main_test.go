package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eaao"
)

func TestWriteSVGs(t *testing.T) {
	dir := t.TempDir()
	res, err := eaao.RunExperiment("fig6", eaao.ExperimentContext{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSVGs(dir, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("not an SVG file")
	}
}

func TestWriteSVGsLogAxis(t *testing.T) {
	// fig4's p_boot sweep spans 7 decades: the writer must choose a log
	// axis (marked in the x label).
	dir := t.TempDir()
	res, err := eaao.RunExperiment("fig4", eaao.ExperimentContext{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSVGs(dir, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "(log)") {
		t.Error("wide-range x axis not rendered logarithmically")
	}
}

func TestCPUProfileWritesValidProfile(t *testing.T) {
	// The acceptance path is `eaao -cpuprofile cpu.out run fig11a -quick`:
	// profile an experiment run and verify the output is a real pprof
	// profile. runtime/pprof emits gzipped protobuf, so the file must start
	// with the gzip magic (0x1f 0x8b) — checked directly, no pprof tooling.
	path := filepath.Join(t.TempDir(), "cpu.out")
	stop, err := startCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := eaao.RunExperiment("fig11a", eaao.ExperimentContext{Seed: 42, Quick: true})
	stop()
	if runErr != nil {
		t.Fatal(runErr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("cpu profile does not start with gzip magic: % x", data[:min(len(data), 4)])
	}
}

func TestMemProfileWritesValidProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.out")
	if err := writeMemProfile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("mem profile does not start with gzip magic: % x", data[:min(len(data), 4)])
	}
}

func TestRunAttackSmoke(t *testing.T) {
	args := []string{
		"-region", "us-west1",
		"-services", "2",
		"-instances", "150",
		"-launches", "3",
		"-victims", "30",
	}
	if err := runAttack(args, 42, true, nil, eaao.FaultPlan{}, "", 0); err != nil {
		t.Fatal(err)
	}
	// A policy override flows through to the platform build.
	if err := runAttack(args, 42, true, eaao.RandomUniformPolicy{}, eaao.FaultPlan{}, "", 0); err != nil {
		t.Fatal(err)
	}
	// A channel override flows through to the campaign's tester.
	if err := runAttack(args, 42, true, nil, eaao.FaultPlan{}, "llc", 0); err != nil {
		t.Fatal(err)
	}
	if err := runAttack(append([]string{"-channel", "combined"}, args...), 42, true, nil, eaao.FaultPlan{}, "", 0); err != nil {
		t.Fatal(err)
	}
	// Background traffic (-load) flows through to the platform build; the
	// campaign carries retry budgets because a loaded world sheds launches.
	if err := runAttack(append([]string{"-retries", "6"}, args...), 42, true, nil, eaao.FaultPlan{}, "", 0.4); err != nil {
		t.Fatal(err)
	}
	// Unknown strategy, region and channel errors surface.
	if err := runAttack([]string{"-strategy", "bogus"}, 42, true, nil, eaao.FaultPlan{}, "", 0); err == nil {
		t.Error("bogus strategy accepted")
	}
	if err := runAttack([]string{"-region", "mars"}, 42, true, nil, eaao.FaultPlan{}, "", 0); err == nil {
		t.Error("bogus region accepted")
	}
	if err := runAttack([]string{"-channel", "hyperlane"}, 42, true, nil, eaao.FaultPlan{}, "", 0); err == nil {
		t.Error("bogus channel accepted")
	}
}

func TestRunFleetAttackSmoke(t *testing.T) {
	args := []string{
		"-regions", "us-east1,us-west1",
		"-planner", "adaptive",
		"-services", "2",
		"-instances", "150",
		"-launches", "3",
		"-victims", "30",
	}
	if err := runAttack(args, 42, true, nil, eaao.FaultPlan{}, "", 0); err != nil {
		t.Fatal(err)
	}
	// A channel override reaches every shard campaign.
	if err := runAttack(args, 42, true, nil, eaao.FaultPlan{}, "llc", 0); err != nil {
		t.Fatal(err)
	}
	// Unknown fleet regions and planners error out.
	if err := runAttack([]string{"-regions", "us-east1,mars"}, 42, true, nil, eaao.FaultPlan{}, "", 0); err == nil {
		t.Error("bogus fleet region accepted")
	}
	if err := runAttack([]string{"-regions", "us-east1", "-planner", "bogus"}, 42, true, nil, eaao.FaultPlan{}, "", 0); err == nil {
		t.Error("bogus planner accepted")
	}
}
