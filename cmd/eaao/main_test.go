package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eaao"
)

func TestWriteSVGs(t *testing.T) {
	dir := t.TempDir()
	res, err := eaao.RunExperiment("fig6", eaao.ExperimentContext{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSVGs(dir, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("not an SVG file")
	}
}

func TestWriteSVGsLogAxis(t *testing.T) {
	// fig4's p_boot sweep spans 7 decades: the writer must choose a log
	// axis (marked in the x label).
	dir := t.TempDir()
	res, err := eaao.RunExperiment("fig4", eaao.ExperimentContext{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSVGs(dir, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "(log)") {
		t.Error("wide-range x axis not rendered logarithmically")
	}
}

func TestRunAttackSmoke(t *testing.T) {
	args := []string{
		"-region", "us-west1",
		"-services", "2",
		"-instances", "150",
		"-launches", "3",
		"-victims", "30",
	}
	if err := runAttack(args, 42, true, nil); err != nil {
		t.Fatal(err)
	}
	// A policy override flows through to the platform build.
	if err := runAttack(args, 42, true, eaao.RandomUniformPolicy{}); err != nil {
		t.Fatal(err)
	}
	// Unknown strategy and region errors surface.
	if err := runAttack([]string{"-strategy", "bogus"}, 42, true, nil); err == nil {
		t.Error("bogus strategy accepted")
	}
	if err := runAttack([]string{"-region", "mars"}, 42, true, nil); err == nil {
		t.Error("bogus region accepted")
	}
}
