package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"eaao"
)

// runAttack implements `eaao attack`: a parameterized attacker-vs-victim
// campaign on a fresh simulated platform, printing the coverage report and
// campaign cost. It is the CLI face of examples/colocation-attack.
func runAttack(args []string, seed uint64, quick bool, policy eaao.PlacementPolicy, faults eaao.FaultPlan, channelDefault string, load float64) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	region := fs.String("region", string(eaao.USEast1), "target region (us-east1, us-central1, us-west1)")
	channel := fs.String("channel", channelDefault, "covert channel for verification: rng, llc, membus, combined (empty = rng)")
	regions := fs.String("regions", "", "comma-separated regions for a multi-region fleet campaign (overrides -region)")
	planner := fs.String("planner", "", "fleet budget planner: static-even, proportional, adaptive (default: the strategy's native rule)")
	services := fs.Int("services", 6, "attacker services")
	perLaunch := fs.Int("instances", 800, "instances per launch")
	launches := fs.Int("launches", 6, "launches per service")
	interval := fs.Duration("interval", 10*time.Minute, "interval between launches")
	victims := fs.Int("victims", 100, "victim instances")
	strategy := fs.String("strategy", "optimized", "naive, optimized, or adaptive")
	gen2 := fs.Bool("gen2", false, "use the Gen 2 (VM) environment on both sides")
	retries := fs.Int("retries", 0, "launch retries on injected faults (exponential backoff from 30s)")
	voteBudget := fs.Int("votebudget", 0, "majority-vote CTest repetitions (0/1 = single shot)")
	probeBudget := fs.Int("probebudget", 0, "fingerprint probe retries before skipping an instance")
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}

	profiles := eaao.DefaultProfiles()
	if quick {
		// Match the experiment harness's reduced scale.
		for i := range profiles {
			profiles[i].NumHosts /= 4
			profiles[i].BasePoolSize /= 4
			profiles[i].AccountHelperPool /= 4
			profiles[i].ServiceHelperSize /= 4
			if profiles[i].ServiceHelperFresh > 4 {
				profiles[i].ServiceHelperFresh /= 4
			}
		}
		if *perLaunch == 800 {
			*perLaunch = 200
		}
	}
	if policy != nil {
		for i := range profiles {
			profiles[i].Policy = policy
		}
	}
	if faults.Enabled() {
		for i := range profiles {
			profiles[i].Faults = faults
		}
	}
	if load > 0 {
		for i := range profiles {
			profiles[i].Traffic = eaao.DefaultTrafficModel(profiles[i].NumHosts, load)
		}
	}
	gen := eaao.Gen1
	if *gen2 {
		gen = eaao.Gen2
	}

	cfg := eaao.DefaultAttackConfig()
	cfg.Services = *services
	cfg.InstancesPerLaunch = *perLaunch
	cfg.Launches = *launches
	cfg.Interval = *interval
	cfg.LaunchRetries = *retries
	cfg.RetryBackoff = 30 * time.Second
	cfg.VoteBudget = *voteBudget
	cfg.ProbeRetryBudget = *probeBudget
	cfg.Channel = *channel

	strat, err := eaao.AttackStrategyByName(*strategy)
	if err != nil {
		return err
	}

	if *regions != "" {
		return runFleetAttack(seed, profiles, strings.Split(*regions, ","),
			*planner, cfg, gen, strat, *victims, faults, load)
	}

	pl := eaao.NewPlatform(seed, profiles...)
	dc, err := pl.Region(eaao.Region(*region))
	if err != nil {
		return err
	}
	if load > 0 {
		// Let the bystander tenants ramp to their target before anyone
		// launches — the same warm-up the noisesweep experiment uses.
		dc.Scheduler().Advance(2 * time.Hour)
	}
	vic, err := launchVictims(dc, gen, *victims)
	if err != nil {
		return err
	}

	start := time.Now()
	camp, err := eaao.NewAttackCampaign(dc.Account("attacker"), cfg, gen, strat)
	if err != nil {
		return err
	}
	res, err := camp.Launch()
	if err != nil {
		return err
	}
	cov, spies, err := camp.Verify(vic)
	if err != nil {
		return err
	}
	st := camp.Stats()

	fmt.Printf("region:            %s (%s, %s strategy, %s channel)\n",
		dc.Region(), gen, strat.Name(), channelLabel(cfg.Channel))
	fmt.Printf("campaign:          %d services × %d launches × %d instances @ %v\n",
		cfg.Services, cfg.Launches, cfg.InstancesPerLaunch, cfg.Interval)
	fmt.Printf("attacker footprint: %d apparent hosts, %d live instances\n",
		res.Footprint.Cumulative(), len(res.Live))
	fmt.Printf("victim coverage:   %s\n", cov)
	fmt.Printf("co-located spies:  %d\n", len(spies))
	fmt.Println(st.String())
	if faults.Enabled() {
		fc := dc.FaultCounters()
		fmt.Printf("injected faults:   %d launch rejections, %d aborts (%d instances rolled back), %d preemptions, %d channel misfires, %d probe faults\n",
			fc.LaunchRejections, fc.LaunchAborts, fc.InstancesRolledBack,
			fc.Preemptions, fc.ChannelMisfires, fc.ProbeFaults)
	}
	fmt.Printf("(simulated in %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// channelLabel renders a channel selector for the report header ("" is the
// default RNG channel).
func channelLabel(ch string) string {
	if ch == "" {
		return "rng"
	}
	return ch
}

// launchVictims deploys the victim tenant's service in one region. The
// victim's deploy tooling retries transient faults like any production
// pipeline; the attacker-side budgets are the attack flags.
func launchVictims(dc *eaao.DataCenter, gen eaao.Gen, n int) ([]*eaao.Instance, error) {
	svc := dc.Account("victim").DeployService("victim-svc", eaao.ServiceConfig{Gen: gen})
	vic, err := svc.Launch(n)
	for tries := 0; err != nil && errors.Is(err, eaao.ErrLaunchFault) && tries < 8; tries++ {
		dc.Scheduler().Advance(15 * time.Second)
		vic, err = svc.Launch(n)
	}
	return vic, err
}

// runFleetAttack is the -regions path: one sharded campaign across a fleet
// of region worlds, with the budget planner reallocating launch rounds
// between them, printing per-region and fleet-wide ledgers.
func runFleetAttack(seed uint64, profiles []eaao.RegionProfile, names []string,
	plannerName string, cfg eaao.AttackConfig, gen eaao.Gen,
	strat eaao.LaunchStrategy, victims int, faults eaao.FaultPlan, load float64) error {
	var selected []eaao.RegionProfile
	for _, name := range names {
		r := eaao.Region(strings.TrimSpace(name))
		found := false
		for _, p := range profiles {
			if p.Name == r {
				selected = append(selected, p)
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown region %q (us-east1, us-central1, us-west1)", r)
		}
	}
	var planner eaao.Planner
	if plannerName != "" {
		var err error
		if planner, err = eaao.AttackPlannerByName(plannerName); err != nil {
			return err
		}
	}
	fleet, err := eaao.NewFleet(seed, selected...)
	if err != nil {
		return err
	}
	if load > 0 {
		for _, dc := range fleet.Shards() {
			dc.Scheduler().Advance(2 * time.Hour)
		}
	}

	start := time.Now()
	fc, err := eaao.NewFleetAttackCampaign(fleet, "attacker", cfg, gen, strat, planner)
	if err != nil {
		return err
	}
	if err := fc.Launch(); err != nil {
		return err
	}
	vicByRegion := make(map[eaao.Region][]*eaao.Instance, fleet.Size())
	for _, dc := range fleet.Shards() {
		vic, err := launchVictims(dc, gen, victims)
		if err != nil {
			return err
		}
		vicByRegion[dc.Region()] = vic
	}
	vers, err := fc.Verify(vicByRegion)
	if err != nil {
		return err
	}

	fmt.Printf("fleet:             %d regions (%s, %s strategy, %s planner, %s channel)\n",
		fleet.Size(), gen, strat.Name(), fc.Planner().Name(), channelLabel(cfg.Channel))
	fmt.Printf("campaign:          %d services × %d launches × %d instances @ %v per region\n",
		cfg.Services, cfg.Launches, cfg.InstancesPerLaunch, cfg.Interval)
	covs := make([]eaao.Coverage, 0, len(vers))
	spies := 0
	for _, v := range vers {
		covs = append(covs, v.Coverage)
		spies += len(v.Spies)
		fmt.Printf("  %-12s %s, %d spies\n", v.Region+":", v.Coverage, len(v.Spies))
	}
	fmt.Printf("fleet coverage:    %s\n", eaao.MergeCoverages(covs...))
	fmt.Printf("co-located spies:  %d\n", spies)
	fmt.Println(fc.Stats().String())
	if faults.Enabled() {
		for _, dc := range fleet.Shards() {
			c := dc.FaultCounters()
			fmt.Printf("injected faults (%s): %d launch rejections, %d aborts (%d instances rolled back), %d preemptions, %d channel misfires, %d probe faults\n",
				dc.Region(), c.LaunchRejections, c.LaunchAborts, c.InstancesRolledBack,
				c.Preemptions, c.ChannelMisfires, c.ProbeFaults)
		}
	}
	fmt.Printf("(simulated in %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}
