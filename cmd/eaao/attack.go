package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eaao"
)

// runAttack implements `eaao attack`: a parameterized attacker-vs-victim
// campaign on a fresh simulated platform, printing the coverage report and
// campaign cost. It is the CLI face of examples/colocation-attack.
func runAttack(args []string, seed uint64, quick bool, policy eaao.PlacementPolicy) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	region := fs.String("region", string(eaao.USEast1), "target region (us-east1, us-central1, us-west1)")
	services := fs.Int("services", 6, "attacker services")
	perLaunch := fs.Int("instances", 800, "instances per launch")
	launches := fs.Int("launches", 6, "launches per service")
	interval := fs.Duration("interval", 10*time.Minute, "interval between launches")
	victims := fs.Int("victims", 100, "victim instances")
	strategy := fs.String("strategy", "optimized", "naive or optimized")
	gen2 := fs.Bool("gen2", false, "use the Gen 2 (VM) environment on both sides")
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}

	profiles := eaao.DefaultProfiles()
	if quick {
		// Match the experiment harness's reduced scale.
		for i := range profiles {
			profiles[i].NumHosts /= 4
			profiles[i].BasePoolSize /= 4
			profiles[i].AccountHelperPool /= 4
			profiles[i].ServiceHelperSize /= 4
			if profiles[i].ServiceHelperFresh > 4 {
				profiles[i].ServiceHelperFresh /= 4
			}
		}
		if *perLaunch == 800 {
			*perLaunch = 200
		}
	}
	if policy != nil {
		for i := range profiles {
			profiles[i].Policy = policy
		}
	}
	pl := eaao.NewPlatform(seed, profiles...)
	dc, err := pl.Region(eaao.Region(*region))
	if err != nil {
		return err
	}

	gen := eaao.Gen1
	if *gen2 {
		gen = eaao.Gen2
	}
	vic, err := dc.Account("victim").DeployService("victim-svc",
		eaao.ServiceConfig{Gen: gen}).Launch(*victims)
	if err != nil {
		return err
	}

	cfg := eaao.DefaultAttackConfig()
	cfg.Services = *services
	cfg.InstancesPerLaunch = *perLaunch
	cfg.Launches = *launches
	cfg.Interval = *interval

	attacker := dc.Account("attacker")
	attacker.ResetBill()
	start := time.Now()
	var camp *eaao.CampaignResult
	switch *strategy {
	case "naive":
		camp, err = eaao.RunNaiveAttack(attacker, cfg, gen)
	case "optimized":
		camp, err = eaao.RunOptimizedAttack(attacker, cfg, gen)
	default:
		return fmt.Errorf("unknown strategy %q (naive or optimized)", *strategy)
	}
	if err != nil {
		return err
	}

	tester := eaao.NewCovertTester(pl.Scheduler())
	cov, spies, err := eaao.MeasureCoverageDetail(tester, camp.Live, vic, cfg.Precision)
	if err != nil {
		return err
	}
	bill := attacker.Bill()
	cost := eaao.CloudRunRates().Cost(bill.VCPUSeconds, bill.GBSeconds)

	fmt.Printf("region:            %s (%s, %s strategy)\n", dc.Region(), gen, *strategy)
	fmt.Printf("campaign:          %d services × %d launches × %d instances @ %v\n",
		cfg.Services, cfg.Launches, cfg.InstancesPerLaunch, cfg.Interval)
	fmt.Printf("attacker footprint: %d apparent hosts, %d live instances\n",
		camp.Footprint.Cumulative(), len(camp.Live))
	fmt.Printf("victim coverage:   %s\n", cov)
	fmt.Printf("co-located spies:  %d\n", len(spies))
	fmt.Printf("campaign cost:     $%.2f (%d instances created)\n", cost, bill.Instances)
	fmt.Printf("(simulated in %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}
