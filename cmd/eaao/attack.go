package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"eaao"
)

// runAttack implements `eaao attack`: a parameterized attacker-vs-victim
// campaign on a fresh simulated platform, printing the coverage report and
// campaign cost. It is the CLI face of examples/colocation-attack.
func runAttack(args []string, seed uint64, quick bool, policy eaao.PlacementPolicy, faults eaao.FaultPlan) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	region := fs.String("region", string(eaao.USEast1), "target region (us-east1, us-central1, us-west1)")
	services := fs.Int("services", 6, "attacker services")
	perLaunch := fs.Int("instances", 800, "instances per launch")
	launches := fs.Int("launches", 6, "launches per service")
	interval := fs.Duration("interval", 10*time.Minute, "interval between launches")
	victims := fs.Int("victims", 100, "victim instances")
	strategy := fs.String("strategy", "optimized", "naive, optimized, or adaptive")
	gen2 := fs.Bool("gen2", false, "use the Gen 2 (VM) environment on both sides")
	retries := fs.Int("retries", 0, "launch retries on injected faults (exponential backoff from 30s)")
	voteBudget := fs.Int("votebudget", 0, "majority-vote CTest repetitions (0/1 = single shot)")
	probeBudget := fs.Int("probebudget", 0, "fingerprint probe retries before skipping an instance")
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}

	profiles := eaao.DefaultProfiles()
	if quick {
		// Match the experiment harness's reduced scale.
		for i := range profiles {
			profiles[i].NumHosts /= 4
			profiles[i].BasePoolSize /= 4
			profiles[i].AccountHelperPool /= 4
			profiles[i].ServiceHelperSize /= 4
			if profiles[i].ServiceHelperFresh > 4 {
				profiles[i].ServiceHelperFresh /= 4
			}
		}
		if *perLaunch == 800 {
			*perLaunch = 200
		}
	}
	if policy != nil {
		for i := range profiles {
			profiles[i].Policy = policy
		}
	}
	if faults.Enabled() {
		for i := range profiles {
			profiles[i].Faults = faults
		}
	}
	pl := eaao.NewPlatform(seed, profiles...)
	dc, err := pl.Region(eaao.Region(*region))
	if err != nil {
		return err
	}

	gen := eaao.Gen1
	if *gen2 {
		gen = eaao.Gen2
	}
	// The victim tenant's deploy tooling retries transient faults like any
	// production pipeline; the attacker-side budgets are the flags above.
	vicSvc := dc.Account("victim").DeployService("victim-svc", eaao.ServiceConfig{Gen: gen})
	vic, err := vicSvc.Launch(*victims)
	for tries := 0; err != nil && errors.Is(err, eaao.ErrLaunchFault) && tries < 8; tries++ {
		dc.Scheduler().Advance(15 * time.Second)
		vic, err = vicSvc.Launch(*victims)
	}
	if err != nil {
		return err
	}

	cfg := eaao.DefaultAttackConfig()
	cfg.Services = *services
	cfg.InstancesPerLaunch = *perLaunch
	cfg.Launches = *launches
	cfg.Interval = *interval
	cfg.LaunchRetries = *retries
	cfg.RetryBackoff = 30 * time.Second
	cfg.VoteBudget = *voteBudget
	cfg.ProbeRetryBudget = *probeBudget

	strat, err := eaao.AttackStrategyByName(*strategy)
	if err != nil {
		return err
	}
	start := time.Now()
	camp, err := eaao.NewAttackCampaign(dc.Account("attacker"), cfg, gen, strat)
	if err != nil {
		return err
	}
	res, err := camp.Launch()
	if err != nil {
		return err
	}
	cov, spies, err := camp.Verify(vic)
	if err != nil {
		return err
	}
	st := camp.Stats()

	fmt.Printf("region:            %s (%s, %s strategy)\n", dc.Region(), gen, strat.Name())
	fmt.Printf("campaign:          %d services × %d launches × %d instances @ %v\n",
		cfg.Services, cfg.Launches, cfg.InstancesPerLaunch, cfg.Interval)
	fmt.Printf("attacker footprint: %d apparent hosts, %d live instances\n",
		res.Footprint.Cumulative(), len(res.Live))
	fmt.Printf("victim coverage:   %s\n", cov)
	fmt.Printf("co-located spies:  %d\n", len(spies))
	fmt.Println(st.String())
	if faults.Enabled() {
		fc := dc.FaultCounters()
		fmt.Printf("injected faults:   %d launch rejections, %d aborts (%d instances rolled back), %d preemptions, %d channel misfires, %d probe faults\n",
			fc.LaunchRejections, fc.LaunchAborts, fc.InstancesRolledBack,
			fc.Preemptions, fc.ChannelMisfires, fc.ProbeFaults)
	}
	fmt.Printf("(simulated in %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}
